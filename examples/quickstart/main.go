// Quickstart: plan a policy for Mixtral 8x7B on a single 16 GB T4 with
// the HRM-based optimizer, simulate an end-to-end MTBench batch
// inference run under CGOPipe (the paper's S1 headline setting) — then
// serve live requests through the streaming Server API on the tiny
// functional engine, watching tokens arrive per decode step.
package main

import (
	"context"
	"fmt"
	"log"

	"moelightning"
)

func main() {
	sys, err := moelightning.New(moelightning.Config{
		Model:    moelightning.Mixtral8x7B(),
		Hardware: moelightning.SettingS1(),
		Workload: moelightning.MTBench(128),
		Padded:   true, // FlexGen-comparable "(p)" mode
	})
	if err != nil {
		log.Fatal(err)
	}

	plan, err := sys.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== policy search ==")
	fmt.Printf("policy:     %v\n", plan.Policy)
	fmt.Printf("estimated:  %.1f tok/s (bottleneck: %s)\n", plan.EstimatedTokensPerSecond, plan.Bottleneck)
	fmt.Printf("searched:   %d candidates, %d feasible\n\n", plan.Searched, plan.Feasible)

	res, err := sys.Simulate(plan.Policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== simulated run ==")
	fmt.Printf("throughput: %.1f tok/s (%d tokens in %.0fs prefill + %.0fs decode)\n",
		res.TokensPerSecond, res.GeneratedTokens, res.PrefillSeconds, res.DecodeSeconds)
	fmt.Printf("decode-step lane utilization: GPU %.0f%%, CPU %.0f%%, HtoD %.0f%%\n\n",
		100*res.Utilization["GPU"], 100*res.Utilization["CPU"], 100*res.Utilization["HtoD"])

	trace, err := sys.DecodeTrace(plan.Policy, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decode-step schedule (CGOPipe) ==")
	fmt.Print(trace)

	// Streaming serving: a long-lived Server over the tiny functional
	// engine. Weights and arenas are built once; requests are admitted
	// continuously, re-batched (Alg. 2) at every wave boundary, and each
	// token streams out the moment its decode step completes.
	fmt.Println("\n== streaming server (TinyMoE, real float32 math) ==")
	srv, err := moelightning.NewServer(moelightning.ServerConfig{
		Model:  moelightning.TinyMoE(),
		Seed:   2024,
		GenLen: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	handles := make([]*moelightning.Handle, 0, 5)
	for id := 1; id <= 5; id++ {
		h, err := srv.Submit(context.Background(), moelightning.Request{
			ID: id, PromptLen: 4 + 3*id, GenLen: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		fmt.Printf("request %d:", h.ID())
		for tok := range h.Tokens() { // streams per decode step
			fmt.Printf(" %d", tok.ID)
		}
		fmt.Println()
	}
	st := srv.Stats()
	fmt.Printf("\nserved %d requests in %d waves (%d deferred): %.0f tok/s, TTFT %v, TPOT %v\n",
		st.Completed, st.Waves, st.Deferred, st.TokensPerSecond, st.AvgTTFT, st.AvgTPOT)

	// The same server with the int8 group-quantized KV codec (§3.3):
	// Append quantizes K/V rows on write, attention dequantizes them in
	// place, and every cached token costs ~9/32 of its float32 bytes —
	// so the same cache arena holds ~3.5x the context. Tokens may drift
	// slightly from the f32 run (greedy argmax over quantized
	// attention); the DtoH byte count shows the offload shrinking.
	fmt.Println("\n== streaming server, int8-quantized KV cache ==")
	qsrv, err := moelightning.NewServer(moelightning.ServerConfig{
		Model:   moelightning.TinyMoE(),
		Seed:    2024,
		GenLen:  8,
		KVDtype: moelightning.KVInt8,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer qsrv.Close()
	qh := make([]*moelightning.Handle, 0, 5)
	for id := 1; id <= 5; id++ {
		h, err := qsrv.Submit(context.Background(), moelightning.Request{
			ID: id, PromptLen: 4 + 3*id, GenLen: 8,
		})
		if err != nil {
			log.Fatal(err)
		}
		qh = append(qh, h)
	}
	for _, h := range qh {
		fmt.Printf("request %d:", h.ID())
		for tok := range h.Tokens() {
			fmt.Printf(" %d", tok.ID)
		}
		fmt.Println()
	}
	qst := qsrv.Stats()
	fmt.Printf("\nint8 KV: %d requests, %d waves, DtoH %d bytes (f32 run moved %d)\n",
		qst.Completed, qst.Waves, qst.DtoHBytes, st.DtoHBytes)
}
