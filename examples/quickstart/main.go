// Quickstart: plan a policy for Mixtral 8x7B on a single 16 GB T4 with
// the HRM-based optimizer, then simulate an end-to-end MTBench batch
// inference run under CGOPipe — the paper's S1 headline setting.
package main

import (
	"fmt"
	"log"

	"moelightning"
)

func main() {
	sys, err := moelightning.New(moelightning.Config{
		Model:    moelightning.Mixtral8x7B(),
		Hardware: moelightning.SettingS1(),
		Workload: moelightning.MTBench(128),
		Padded:   true, // FlexGen-comparable "(p)" mode
	})
	if err != nil {
		log.Fatal(err)
	}

	plan, err := sys.Plan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== policy search ==")
	fmt.Printf("policy:     %v\n", plan.Policy)
	fmt.Printf("estimated:  %.1f tok/s (bottleneck: %s)\n", plan.EstimatedTokensPerSecond, plan.Bottleneck)
	fmt.Printf("searched:   %d candidates, %d feasible\n\n", plan.Searched, plan.Feasible)

	res, err := sys.Simulate(plan.Policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== simulated run ==")
	fmt.Printf("throughput: %.1f tok/s (%d tokens in %.0fs prefill + %.0fs decode)\n",
		res.TokensPerSecond, res.GeneratedTokens, res.PrefillSeconds, res.DecodeSeconds)
	fmt.Printf("decode-step lane utilization: GPU %.0f%%, CPU %.0f%%, HtoD %.0f%%\n\n",
		100*res.Utilization["GPU"], 100*res.Utilization["CPU"], 100*res.Utilization["HtoD"])

	trace, err := sys.DecodeTrace(plan.Policy, 100)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== decode-step schedule (CGOPipe) ==")
	fmt.Print(trace)
}
