// TinyMoE: the functional engine generating real tokens. A tiny MoE
// transformer runs CGOPipe decode with one goroutine per hardware lane,
// paged weights moving CPU -> pinned -> GPU double buffer, and CPU
// attention over a paged KV cache — then its output is checked
// token-for-token against the sequential reference engine.
package main

import (
	"fmt"
	"log"
	"reflect"

	"moelightning"
	"moelightning/internal/engine"
	"moelightning/internal/memory"
	"moelightning/internal/workload"
)

func main() {
	cfg := moelightning.TinyMoE()
	fmt.Println("model:", cfg)

	// Arenas: the functional stand-ins for CPU DRAM, pinned staging and
	// GPU HBM (sizes in float32s).
	cpu := memory.NewArena("cpu", 1<<22)
	gpu := memory.NewArena("gpu", 1<<22)
	pinned := memory.NewArena("pinned", 1<<22)
	cacheArena := memory.NewArena("kvcache", 1<<22)

	weights, err := engine.NewRandomWeights(cpu, cfg, 2024)
	if err != nil {
		log.Fatal(err)
	}

	// An MTBench-shaped micro workload.
	wl := workload.MTBench(12).WithRequests(6)
	reqs := wl.Generate(7)
	for i := range reqs {
		if reqs[i].PromptLen > 24 {
			reqs[i].PromptLen = 24 // keep the demo quick
		}
	}
	prompts := engine.PromptsFromRequests(reqs, cfg.VocabSize)

	const genLen = 10
	pipe, err := engine.NewPipeline(weights, gpu, pinned, cacheArena, len(prompts),
		engine.Config{MicroBatch: 2, MaxContext: 64, Lookahead: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer pipe.Close()

	tokens, err := pipe.Generate(prompts, genLen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ngenerated tokens (CGOPipe pipeline):")
	for s, toks := range tokens {
		fmt.Printf("  seq %d (prompt %2d tokens): %v\n", s, len(prompts[s]), toks)
	}

	// Verify against the sequential reference.
	ref, err := engine.NewReference(weights, memory.NewArena("refcache", 1<<22), len(prompts), 64)
	if err != nil {
		log.Fatal(err)
	}
	want, err := ref.Generate(prompts, genLen)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(tokens, want) {
		log.Fatal("pipeline diverged from the reference!")
	}
	fmt.Println("\npipeline output matches the sequential reference token-for-token")

	pipe.Close() // drain the lanes and the expert prefetcher so counters are final
	fmt.Printf("\ndata movement (bytes): HtoD %d, DtoH %d, pinned staging %d, shared weight pages %d\n",
		pipe.Counters.HtoDBytes.Load(), pipe.Counters.DtoHBytes.Load(),
		pipe.Counters.PinBytes.Load(), pipe.Counters.PagesMoved.Load())
	ep := &pipe.Counters.ExpertPaging
	fmt.Printf("expert paging: %d hits, %d misses, %d prefetched, %d evicted, %d bytes fetched\n",
		ep.Hits.Load(), ep.Misses.Load(), ep.Prefetched.Load(), ep.Evicted.Load(), ep.BytesFetched.Load())
	fmt.Printf("kernels: %d GPU launches, %d CPU attention calls\n",
		pipe.Counters.GPUKernels.Load(), pipe.Counters.CPUAttns.Load())

	fmt.Println("\nexpert load per layer (router statistics):")
	for l, load := range pipe.ExpertLoad {
		fmt.Printf("  layer %d: %v\n", l, load)
	}
}
