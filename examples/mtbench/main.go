// MTBench reproduction: the paper's Fig. 7 end-to-end comparison on the
// single-GPU settings — all five systems (FlexGen, FlexGen(c),
// DeepSpeed, MoE-Lightning(p), MoE-Lightning) across generation lengths
// on S1 and S2 — followed by a live replay of an MTBench-shaped
// workload through the streaming Server API on the tiny functional
// engine.
package main

import (
	"context"
	"fmt"
	"log"

	"moelightning"
	"moelightning/internal/experiments"
)

func main() {
	rows, err := experiments.Figure7([]string{"S1", "S2"}, []int{32, 64, 128, 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFigure7(rows))

	// Speedups like the paper's headline claims.
	best := map[string]map[int]map[string]float64{}
	for _, r := range rows {
		if best[r.Setting] == nil {
			best[r.Setting] = map[int]map[string]float64{}
		}
		if best[r.Setting][r.GenLen] == nil {
			best[r.Setting][r.GenLen] = map[string]float64{}
		}
		if !r.Failed() {
			best[r.Setting][r.GenLen][r.System] = r.TokensPerSecond
		}
	}
	fmt.Println("Speedups of MoE-Lightning(p) over the best baseline:")
	for _, s := range []string{"S1", "S2"} {
		for _, g := range []int{32, 64, 128, 256} {
			m := best[s][g]
			baseline := m["FlexGen"]
			for _, sys := range []string{"FlexGen(c)", "DeepSpeed"} {
				if m[sys] > baseline {
					baseline = m[sys]
				}
			}
			fmt.Printf("  %s gen=%-4d %.2fx padded, %.2fx unpadded\n",
				s, g, m["MoE-Lightning(p)"]/baseline, m["MoE-Lightning"]/baseline)
		}
	}

	liveReplay()
}

// liveReplay pushes an MTBench-shaped micro workload through the
// long-lived streaming Server: requests are admitted over time (one
// batch, then a late straggler group), re-batched at wave boundaries,
// and measured with serving metrics (TTFT/TPOT) instead of batch
// throughput alone.
func liveReplay() {
	fmt.Println("\n== live replay: MTBench-shaped workload on the streaming server ==")
	const genLen = 8
	srv, err := moelightning.NewServer(moelightning.ServerConfig{
		Model:  moelightning.TinyMoE(),
		Seed:   7,
		GenLen: genLen,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	wl := moelightning.MTBench(genLen)
	reqs := wl.WithRequests(8).Generate(7)
	for i := range reqs {
		if reqs[i].PromptLen > 24 {
			reqs[i].PromptLen = 24 // keep the demo quick
		}
	}

	first, err := srv.SubmitBatch(context.Background(), reqs[:5])
	if err != nil {
		log.Fatal(err)
	}
	// Stragglers arrive while the first waves are in flight; the
	// admission loop folds them into the next wave boundary.
	second, err := srv.SubmitBatch(context.Background(), reqs[5:])
	if err != nil {
		log.Fatal(err)
	}
	for _, h := range append(first, second...) {
		tokens, err := h.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  request %2d (prompt %2d): %v\n", h.ID(), h.Request().PromptLen, tokens)
	}
	st := srv.Stats()
	fmt.Printf("served %d requests in %d waves (%d deferred): %.0f tok/s, TTFT %v, TPOT %v\n",
		st.Completed, st.Waves, st.Deferred, st.TokensPerSecond, st.AvgTTFT, st.AvgTPOT)
}
