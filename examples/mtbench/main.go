// MTBench reproduction: the paper's Fig. 7 end-to-end comparison on the
// single-GPU settings — all five systems (FlexGen, FlexGen(c),
// DeepSpeed, MoE-Lightning(p), MoE-Lightning) across generation lengths
// on S1 and S2.
package main

import (
	"fmt"
	"log"

	"moelightning/internal/experiments"
)

func main() {
	rows, err := experiments.Figure7([]string{"S1", "S2"}, []int{32, 64, 128, 256})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFigure7(rows))

	// Speedups like the paper's headline claims.
	best := map[string]map[int]map[string]float64{}
	for _, r := range rows {
		if best[r.Setting] == nil {
			best[r.Setting] = map[int]map[string]float64{}
		}
		if best[r.Setting][r.GenLen] == nil {
			best[r.Setting][r.GenLen] = map[string]float64{}
		}
		if !r.Failed() {
			best[r.Setting][r.GenLen][r.System] = r.TokensPerSecond
		}
	}
	fmt.Println("Speedups of MoE-Lightning(p) over the best baseline:")
	for _, s := range []string{"S1", "S2"} {
		for _, g := range []int{32, 64, 128, 256} {
			m := best[s][g]
			baseline := m["FlexGen"]
			for _, sys := range []string{"FlexGen(c)", "DeepSpeed"} {
				if m[sys] > baseline {
					baseline = m[sys]
				}
			}
			fmt.Printf("  %s gen=%-4d %.2fx padded, %.2fx unpadded\n",
				s, g, m["MoE-Lightning(p)"]/baseline, m["MoE-Lightning"]/baseline)
		}
	}
}
