// Command simtrace simulates one decode step under each scheduling
// strategy and prints ASCII Gantt charts — a textual Fig. 6.
//
// Usage:
//
//	simtrace [-setting S1] [-layers 4] [-mb 4] [-strategy cgopipe]
package main

import (
	"flag"
	"fmt"
	"os"

	"moelightning/internal/experiments"
	"moelightning/internal/metrics"
	"moelightning/internal/perfmodel"
	"moelightning/internal/policy"
	"moelightning/internal/schedule"
	"moelightning/internal/sim"
	"moelightning/internal/workload"
)

func main() {
	settingName := flag.String("setting", "S1", "hardware setting (S1,S2,S6,S7,S8,S9)")
	layers := flag.Int("layers", 4, "layers to trace")
	mb := flag.Int("mb", 4, "micro-batches to trace")
	strategy := flag.String("strategy", "", "trace a single strategy (cgopipe, s2-overlap, s3-serialcpu, s4-gpuattn, serial); empty = all of Fig. 6")
	width := flag.Int("width", 100, "chart width")
	flag.Parse()

	if *strategy == "" && *settingName == "S1" {
		rs, err := experiments.Figure6(*layers, *mb)
		if err != nil {
			fatal(err)
		}
		fmt.Print(experiments.RenderFigure6(rs))
		return
	}

	setting, err := experiments.Lookup(*settingName)
	if err != nil {
		fatal(err)
	}
	in := setting.Input(workload.MTBench(128))
	in.Padded = true
	e, err := perfmodel.New(in)
	if err != nil {
		fatal(err)
	}
	res, err := policy.Optimize(in)
	if err != nil {
		fatal(err)
	}
	plan := schedule.PlanFor(e, res.Policy, in.MidContext())
	plan.Layers = *layers
	plan.MicroBatches = *mb
	plan.D.WeightPage = plan.D.WeightWhole / float64(*mb)
	plan.D.PinPage = plan.D.PinWhole / float64(*mb)

	strategies := schedule.Strategies()
	if *strategy != "" {
		strategies = []schedule.Strategy{schedule.Strategy(*strategy)}
	}
	for _, s := range strategies {
		tasks, err := schedule.Build(s, plan)
		if err != nil {
			fatal(err)
		}
		r, err := sim.Run(tasks)
		if err != nil {
			fatal(err)
		}
		fmt.Print(metrics.Gantt(string(s), r, *width))
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simtrace:", err)
	os.Exit(1)
}
