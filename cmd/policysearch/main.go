// Command policysearch runs the HRM-based policy optimizer for a model,
// hardware setting and workload, printing the chosen policy, the memory
// footprints and the estimated vs simulated throughput.
//
// Usage:
//
//	policysearch -model mixtral-8x7b -setting S1 -workload mtbench -gen 128 [-padded]
package main

import (
	"flag"
	"fmt"
	"os"

	"moelightning/internal/experiments"
	"moelightning/internal/hardware"
	"moelightning/internal/model"
	"moelightning/internal/perfmodel"
	"moelightning/internal/policy"
	"moelightning/internal/workload"
)

func main() {
	modelName := flag.String("model", "mixtral-8x7b", "model preset: mixtral-8x7b, mixtral-8x22b, dbrx, tiny")
	settingName := flag.String("setting", "S1", "hardware setting: S1,S2,S6,S7,S8,S9,2xA100")
	workloadName := flag.String("workload", "mtbench", "workload preset: mtbench, reasoning, summarize")
	gen := flag.Int("gen", 128, "generation length (mtbench only)")
	padded := flag.Bool("padded", false, "pad requests to the maximum prompt length")
	flag.Parse()

	m, ok := model.Presets()[*modelName]
	if !ok {
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	spec, ok := hardware.Presets()[*settingName]
	if !ok {
		fatal(fmt.Errorf("unknown setting %q", *settingName))
	}
	w, ok := workload.Presets()[*workloadName]
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workloadName))
	}
	if *workloadName == "mtbench" {
		w = w.WithGenLen(*gen)
	}

	in := perfmodel.Input{Model: m, Spec: spec, Workload: w, Padded: *padded}
	fmt.Println("model:   ", m)
	fmt.Println("hardware:", spec)
	fmt.Printf("workload: %s (avg prompt %d, gen %d, padded=%v)\n\n", w.Name, w.AvgPrompt, w.GenLen, *padded)

	res, err := policy.Optimize(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("policy:    %v\n", res.Policy)
	fmt.Printf("searched:  %d candidates (%d feasible)\n", res.Evaluated, res.Feasible)
	fmt.Printf("estimated: %.2f tok/s (bottleneck: %s)\n", res.Report.TokensPerSecond, res.Report.Bottleneck)

	e, err := perfmodel.New(in)
	if err != nil {
		fatal(err)
	}
	g, c := e.GPUMem(res.Policy), e.CPUMem(res.Policy)
	fmt.Printf("GPU memory: %.1f GiB of %.1f (weights %.1f, buffer %.1f, kv %.1f, act %.1f, emb %.1f)\n",
		gib(g.Total()), gib(spec.TotalGPUMem()), gib(g.Weights), gib(g.WeightBuffer),
		gib(g.KVCache), gib(g.Activations), gib(g.Embeddings))
	fmt.Printf("CPU memory: %.1f GiB of %.1f (weights %.1f, staging %.1f, kv %.1f)\n",
		gib(c.Total()), gib(spec.CPU.MemBytes), gib(c.Weights), gib(c.WeightBuffer), gib(c.KVCache))

	sys := experiments.MoELightning()
	sys.Padded = *padded
	mes := experiments.RunPolicy(sys, in, res.Policy)
	if mes.Failed() {
		fatal(mes.Err)
	}
	fmt.Printf("simulated: %.2f tok/s (prefill %.0fs + decode %.0fs for %d tokens)\n",
		mes.TokensPerSecond, mes.PrefillSeconds, mes.DecodeSeconds, mes.GeneratedTokens)
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "policysearch:", err)
	os.Exit(1)
}
