// Command policysearch runs the HRM-based policy optimizer for a model,
// hardware setting and workload, printing the chosen policy, the
// byte-denominated memory budgets and the estimated vs simulated
// throughput. With -calib it searches over measured kernel
// efficiencies instead of the analytic spec curve, and for models the
// functional engine can run it emits the chosen policy as a
// copy-pasteable, ready-to-run ServerConfig.
//
// Usage:
//
//	policysearch -model mixtral-8x7b -setting S1 -workload mtbench -gen 128 [-padded]
//	policysearch -model tiny -setting host -calib BENCH_calib.json -kvdtype int8
package main

import (
	"flag"
	"fmt"
	"os"

	"moelightning"
	"moelightning/internal/calib"
	"moelightning/internal/experiments"
	"moelightning/internal/hardware"
	"moelightning/internal/kvcache"
	"moelightning/internal/model"
	"moelightning/internal/perfmodel"
	"moelightning/internal/policy"
	"moelightning/internal/workload"
)

func main() {
	modelName := flag.String("model", "mixtral-8x7b", "model preset: mixtral-8x7b, mixtral-8x22b, dbrx, tiny")
	settingName := flag.String("setting", "S1", "hardware setting: S1,S2,S6,S7,S8,S9,2xA100,host")
	workloadName := flag.String("workload", "mtbench", "workload preset: mtbench, reasoning, summarize")
	gen := flag.Int("gen", 128, "generation length (mtbench only)")
	padded := flag.Bool("padded", false, "pad requests to the maximum prompt length")
	calibPath := flag.String("calib", "", "calibration table (moebench -exp calib); searches measured efficiencies over the paged weight layout")
	kvdtypeName := flag.String("kvdtype", "f32", "KV codec the calibrated estimator and the emitted serve config assume: f32 or int8")
	flag.Parse()

	m, ok := model.Presets()[*modelName]
	if !ok {
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	spec, ok := hardware.Presets()[*settingName]
	if !ok {
		fatal(fmt.Errorf("unknown setting %q", *settingName))
	}
	w, ok := workload.Presets()[*workloadName]
	if !ok {
		fatal(fmt.Errorf("unknown workload %q", *workloadName))
	}
	if *workloadName == "mtbench" {
		w = w.WithGenLen(*gen)
	}
	kvDtype, err := kvcache.ParseDType(*kvdtypeName)
	if err != nil {
		fatal(err)
	}

	in := perfmodel.Input{Model: m, Spec: spec, Workload: w, Padded: *padded}
	if *calibPath != "" {
		table, err := calib.Load(*calibPath, perfmodel.AnalyticEfficiency(spec))
		if err != nil {
			fatal(err)
		}
		in.Eff = table
		in.Paged = true
		in.ExpertHitRatio = table.ExpertHitRatio
		in.KVCodec = perfmodel.KVPagedF32
		if kvDtype == kvcache.Int8 {
			in.KVCodec = perfmodel.KVPagedInt8
		}
		fmt.Printf("calibrated: %s (%d entries, host %s, expert warm-hit %.0f%%, decode schedule eff %.2f)\n",
			*calibPath, len(table.Entries), table.Host, 100*table.ExpertHitRatio, table.ScheduleEffDecode)
	}
	fmt.Println("model:   ", m)
	fmt.Println("hardware:", spec)
	fmt.Printf("workload: %s (avg prompt %d, gen %d, padded=%v)\n\n", w.Name, w.AvgPrompt, w.GenLen, *padded)

	res, err := policy.Optimize(in)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("policy:    %v\n", res.Policy)
	fmt.Printf("searched:  %d candidates (%d feasible)\n", res.Evaluated, res.Feasible)
	fmt.Printf("estimated: %.2f tok/s (bottleneck: %s)\n", res.Report.TokensPerSecond, res.Report.Bottleneck)

	e, err := perfmodel.New(in)
	if err != nil {
		fatal(err)
	}
	g, c := e.GPUMem(res.Policy), e.CPUMem(res.Policy)
	fmt.Printf("GPU memory: %.1f GiB of %.1f (weights %.1f, buffer %.1f, kv %.1f, act %.1f, emb %.1f)\n",
		gib(g.Total()), gib(spec.TotalGPUMem()), gib(g.Weights), gib(g.WeightBuffer),
		gib(g.KVCache), gib(g.Activations), gib(g.Embeddings))
	fmt.Printf("CPU memory: %.1f GiB of %.1f (weights %.1f, staging %.1f, kv %.1f)\n",
		gib(c.Total()), gib(spec.CPU.MemBytes), gib(c.Weights), gib(c.WeightBuffer), gib(c.KVCache))

	// Byte-denominated traffic budgets per layer pass at mid-generation:
	// what each decode step actually moves, at the serving codec's rate.
	kvTokLayer := float64(m.KVBytesPerTokenLayer())
	if *calibPath != "" {
		kvTokLayer = float64(kvcache.TokenBytes(m.KVDim(), kvDtype))
	}
	fmt.Printf("budgets/layer: weight stream %s per pass, KV %s per token (%s whole-batch at mid-gen context %d)\n",
		mib(e.WeightStreamBytes(res.Policy)), bytesStr(kvTokLayer),
		mib(float64(res.Policy.N)*float64(in.MidContext())*kvTokLayer), in.MidContext())

	sys := experiments.MoELightning()
	sys.Padded = *padded
	mes := experiments.RunPolicy(sys, in, res.Policy)
	if mes.Failed() {
		fatal(mes.Err)
	}
	fmt.Printf("simulated: %.2f tok/s (prefill %.0fs + decode %.0fs for %d tokens)\n",
		mes.TokensPerSecond, mes.PrefillSeconds, mes.DecodeSeconds, mes.GeneratedTokens)

	// For models the functional engine can execute, emit the policy as
	// a ready-to-run server configuration.
	if m.TotalParams() <= 50_000_000 {
		cfg := moelightning.ServerConfigForPolicy(m, res.Policy, w, kvDtype)
		fmt.Printf("\nserve config (copy-pasteable):\n  %s\n", moelightning.FormatServerConfig(cfg))
	}
}

func gib(b int64) float64 { return float64(b) / (1 << 30) }

func mib(b float64) string { return fmt.Sprintf("%.1f MiB", b/(1<<20)) }

func bytesStr(b float64) string {
	if b >= 1<<10 {
		return fmt.Sprintf("%.1f KiB", b/(1<<10))
	}
	return fmt.Sprintf("%.0f B", b)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "policysearch:", err)
	os.Exit(1)
}
