// Command hrmplot renders Hierarchical Roofline Model plots (Figs. 4-5
// style) for a hardware setting and model, as ASCII log-log charts.
//
// Usage:
//
//	hrmplot -fig 4          # attention block (Fig. 4)
//	hrmplot -fig 5          # MoE FFN block (Fig. 5)
//	hrmplot -setting S1 -model mixtral-8x7b -op attention -ctx 1024
package main

import (
	"flag"
	"fmt"
	"os"

	"moelightning/internal/experiments"
	"moelightning/internal/hardware"
	"moelightning/internal/model"
	"moelightning/internal/roofline"
)

func main() {
	fig := flag.Int("fig", 0, "reproduce a paper figure directly (4 or 5)")
	settingName := flag.String("setting", "S2", "hardware setting")
	modelName := flag.String("model", "mixtral-8x7b", "model preset")
	op := flag.String("op", "attention", "operator: attention or ffn")
	ctx := flag.Int("ctx", 512, "context length (attention)")
	mu := flag.Int("mu", 128, "micro-batch size (ffn)")
	n := flag.Int("n", 1024, "batch size (ffn)")
	flag.Parse()

	switch *fig {
	case 4:
		fmt.Print(experiments.Figure4().Render())
		return
	case 5:
		fmt.Print(experiments.Figure5().Render())
		return
	}

	spec, ok := hardware.Presets()[*settingName]
	if !ok {
		fatal(fmt.Errorf("unknown setting %q", *settingName))
	}
	cfg, ok := model.Presets()[*modelName]
	if !ok {
		fatal(fmt.Errorf("unknown model %q", *modelName))
	}
	h := roofline.FromSpec(spec)

	var o roofline.Op
	switch *op {
	case "attention":
		o = roofline.AttentionOp(cfg, *ctx, cfg.KVDType)
	case "ffn":
		o = roofline.FFNOp(cfg, *n, *mu)
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}

	figure := experiments.HRMFigure{
		Title: fmt.Sprintf("HRM: %s %s on %s", cfg.Name, o.Name, spec.Name),
		HRM:   h,
		Roofs: h.Roofs(0.1, 1e4, 64),
		Ops:   []roofline.Op{o},
		P1:    h.P1At(o),
		P2:    h.P2At(o.IUpper),
	}
	fmt.Print(figure.Render())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hrmplot:", err)
	os.Exit(1)
}
