// Command moebench regenerates the paper's tables and figures.
//
// Usage:
//
//	moebench -exp fig7 [-settings S1,S2] [-gens 32,64,128,256]
//	moebench -exp tab4 | tab5 | fig1 | fig4 | fig5 | fig6 | fig8 | fig9 | fig10
//	moebench -exp serve   (streaming-server demo on the functional engine)
//	moebench -exp all
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"moelightning"
	"moelightning/internal/experiments"
	"moelightning/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,tab4,tab5,disk,quant,sparsity,latency,serve,all")
	settings := flag.String("settings", "S1,S2,S6,S7", "comma-separated settings for fig7")
	gens := flag.String("gens", "32,64,128,256", "comma-separated generation lengths")
	kvdtype := flag.String("kvdtype", "f32", "KV cache codec for -exp serve: f32 or int8")
	flag.Parse()

	kvDtype, err := moelightning.ParseKVDtype(*kvdtype)
	if err != nil {
		fatal(err)
	}

	genLens, err := parseInts(*gens)
	if err != nil {
		fatal(err)
	}
	settingNames := strings.Split(*settings, ",")

	run := func(id string) error {
		switch id {
		case "fig1":
			pts := experiments.Figure1([]float64{100, 112, 128, 160, 192, 224, 256, 320})
			fmt.Print(experiments.RenderFigure1(pts))
		case "fig4":
			fmt.Print(experiments.Figure4().Render())
		case "fig5":
			fmt.Print(experiments.Figure5().Render())
		case "fig6":
			rs, err := experiments.Figure6(4, 4)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure6(rs))
		case "fig7":
			rows, err := experiments.Figure7(settingNames, genLens)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure7(rows))
		case "fig8":
			rows, err := experiments.Figure8(genLens)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure8(rows))
		case "fig9":
			cells, err := experiments.Figure9([]int{32, 64, 128, 256}, []int{128, 256, 512, 1024, 2048})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure9(cells))
		case "fig10":
			cells := experiments.Figure10(
				[]float64{1, 2, 4, 6, 8, 10},
				[]float64{100, 200, 300, 400, 500})
			fmt.Print(experiments.RenderFigure10(cells))
		case "disk":
			rows := experiments.DiskOffload([]float64{32, 48, 64, 96, 128, 192})
			fmt.Print(experiments.RenderDiskOffload(rows))
		case "quant":
			rows := experiments.Quantization()
			fmt.Print(experiments.RenderQuantization(rows))
			fmt.Println()
			fmt.Print(experiments.RenderMeasuredQuantization(experiments.MeasuredQuantization()))
		case "latency":
			rows := experiments.LatencyRegime([]int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
			fmt.Print(experiments.RenderLatencyRegime(rows))
		case "sparsity":
			rows, err := experiments.KVSparsity([]float64{1, 0.5, 0.25, 0.125})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderKVSparsity(rows))
		case "serve":
			return runServe(kvDtype)
		case "tab4":
			rows, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable4(rows))
		case "tab5":
			rows, err := experiments.Table5()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable5(rows))
			opt, err := experiments.Table5Optimized()
			if err != nil {
				return err
			}
			fmt.Println()
			fmt.Print(experiments.RenderTable5(opt))
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab4", "tab5", "disk", "quant", "sparsity", "latency", "serve"}
	}
	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		if err := run(id); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// runServe demonstrates the streaming serving API on the tiny
// functional engine: continuous admission, per-token streams,
// mid-generation cancellation, and TTFT/TPOT serving metrics.
// -kvdtype int8 serves the same waves over the group-quantized paged
// cache (~9/32 the KV footprint).
func runServe(kvDtype moelightning.KVDtype) error {
	const genLen = 8
	srv, err := moelightning.NewServer(moelightning.ServerConfig{
		Model:   moelightning.TinyMoE(),
		Seed:    2024,
		GenLen:  genLen,
		KVDtype: kvDtype,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	reqs := make([]moelightning.Request, 6)
	for i := range reqs {
		reqs[i] = moelightning.Request{ID: i + 1, PromptLen: 4 + 3*i, GenLen: genLen}
	}
	handles, err := srv.SubmitBatch(context.Background(), reqs)
	if err != nil {
		return err
	}

	// One extra request is canceled after its first token: its sequence
	// retires at the next decode-step boundary and its KV slot frees.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victim, err := srv.Submit(ctx, moelightning.Request{ID: 99, PromptLen: 10, GenLen: genLen})
	if err != nil {
		return err
	}
	if _, ok := <-victim.Tokens(); ok {
		cancel()
	}

	table := &metrics.Table{Header: []string{"request", "prompt", "status", "tokens"}}
	for _, h := range append(handles, victim) {
		tokens, herr := h.Wait()
		status := "completed"
		if herr != nil {
			status = "canceled"
		}
		table.Add(h.ID(), h.Request().PromptLen, status, fmt.Sprintf("%v", tokens))
	}
	fmt.Print(table.String())
	st := srv.Stats()
	fmt.Printf("kv %v: waves %d, deferred %d, canceled %d; prefill %d tokens at %.0f tok/s; %d tokens at %.0f tok/s; TTFT %v, TPOT %v\n",
		kvDtype, st.Waves, st.Deferred, st.Canceled, st.PrefillTokens, st.PrefillTokensPerSecond,
		st.GeneratedTokens, st.TokensPerSecond, st.AvgTTFT, st.AvgTPOT)
	warmHit := 0.0
	if acq := st.ExpertHits + st.ExpertMisses; acq > 0 {
		warmHit = 100 * float64(st.ExpertHits) / float64(acq)
	}
	fmt.Printf("movement: HtoD %.1f MiB, DtoH %.1f MiB, %d shared pages; expert weights %.1f MiB fetched, warm-hit %.0f%% (%d hits / %d misses)\n",
		float64(st.HtoDBytes)/(1<<20), float64(st.DtoHBytes)/(1<<20), st.PagesMoved,
		float64(st.WeightBytesFetched)/(1<<20), warmHit, st.ExpertHits, st.ExpertMisses)
	return nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moebench:", err)
	os.Exit(1)
}
