// Command moebench regenerates the paper's tables and figures.
//
// Usage:
//
//	moebench -exp fig7 [-settings S1,S2] [-gens 32,64,128,256]
//	moebench -exp tab4 | tab5 | fig1 | fig4 | fig5 | fig6 | fig8 | fig9 | fig10
//	moebench -exp serve   (streaming-server demo on the functional engine)
//	moebench -exp slo     (open-loop traffic + SLO sweep -> BENCH_serve.json)
//	moebench -exp all
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured record. -exp slo drives the
// live server with seeded Poisson and bursty arrival traces at several
// load multiples, reports p50/p95/p99 TTFT/TPOT and goodput under
// per-cohort SLOs, finds the saturation knee, and writes the standing
// BENCH_serve.json (-json overrides the path; -exp serve also honors
// -json for a machine-readable result).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"moelightning"
	"moelightning/internal/calib"
	"moelightning/internal/chaos"
	"moelightning/internal/experiments"
	"moelightning/internal/metrics"
	"moelightning/internal/traffic"
	"moelightning/internal/workload"
)

func main() {
	exp := flag.String("exp", "all", "experiment id: fig1,fig4,fig5,fig6,fig7,fig8,fig9,fig10,tab4,tab5,disk,quant,sparsity,latency,serve,slo,calib,chaos,all")
	settings := flag.String("settings", "S1,S2,S6,S7", "comma-separated settings for fig7")
	gens := flag.String("gens", "32,64,128,256", "comma-separated generation lengths")
	kvdtype := flag.String("kvdtype", "f32", "KV cache codec for -exp serve/slo: f32 or int8")
	sharedPrefix := flag.Bool("sharedprefix", true, "shared-prefix KV reuse for -exp serve/slo (refcounted blocks, copy-on-write)")
	jsonPath := flag.String("json", "", "write a machine-readable result here (serve; slo defaults to BENCH_serve.json)")
	rps := flag.Float64("rps", 12, "base arrival rate for -exp slo scenarios")
	requests := flag.Int("requests", 36, "requests per sweep point for -exp slo")
	sweep := flag.String("sweep", "0.5,1,2", "comma-separated arrival-rate multiples for the -exp slo saturation sweep")
	seed := flag.Int64("seed", 2024, "trace seed for -exp slo and bench seed for -exp calib")
	quick := flag.Bool("quick", false, "shrink -exp calib/chaos runs for smoke tests")
	flag.Parse()

	kvDtype, err := moelightning.ParseKVDtype(*kvdtype)
	if err != nil {
		fatal(err)
	}

	genLens, err := parseInts(*gens)
	if err != nil {
		fatal(err)
	}
	settingNames := strings.Split(*settings, ",")
	sweepScales, err := parseFloats(*sweep)
	if err != nil {
		fatal(err)
	}

	run := func(id string) error {
		switch id {
		case "fig1":
			pts := experiments.Figure1([]float64{100, 112, 128, 160, 192, 224, 256, 320})
			fmt.Print(experiments.RenderFigure1(pts))
		case "fig4":
			fmt.Print(experiments.Figure4().Render())
		case "fig5":
			fmt.Print(experiments.Figure5().Render())
		case "fig6":
			rs, err := experiments.Figure6(4, 4)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure6(rs))
		case "fig7":
			rows, err := experiments.Figure7(settingNames, genLens)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure7(rows))
		case "fig8":
			rows, err := experiments.Figure8(genLens)
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure8(rows))
		case "fig9":
			cells, err := experiments.Figure9([]int{32, 64, 128, 256}, []int{128, 256, 512, 1024, 2048})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderFigure9(cells))
		case "fig10":
			cells := experiments.Figure10(
				[]float64{1, 2, 4, 6, 8, 10},
				[]float64{100, 200, 300, 400, 500})
			fmt.Print(experiments.RenderFigure10(cells))
		case "disk":
			rows := experiments.DiskOffload([]float64{32, 48, 64, 96, 128, 192})
			fmt.Print(experiments.RenderDiskOffload(rows))
		case "quant":
			rows := experiments.Quantization()
			fmt.Print(experiments.RenderQuantization(rows))
			fmt.Println()
			fmt.Print(experiments.RenderMeasuredQuantization(experiments.MeasuredQuantization()))
		case "latency":
			rows := experiments.LatencyRegime([]int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512})
			fmt.Print(experiments.RenderLatencyRegime(rows))
		case "sparsity":
			rows, err := experiments.KVSparsity([]float64{1, 0.5, 0.25, 0.125})
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderKVSparsity(rows))
		case "serve":
			return runServe(kvDtype, prefixMode(*sharedPrefix), *jsonPath)
		case "slo":
			path := *jsonPath
			if path == "" {
				path = "BENCH_serve.json"
			}
			return runSLO(kvDtype, prefixMode(*sharedPrefix), *rps, *requests, sweepScales, *seed, path)
		case "calib":
			path := *jsonPath
			if path == "" {
				path = "BENCH_calib.json"
			}
			return runCalib(*quick, *seed, path)
		case "chaos":
			path := *jsonPath
			if path == "" {
				path = "BENCH_chaos.json"
			}
			return runChaos(*quick, *seed, path)
		case "tab4":
			rows, err := experiments.Table4()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable4(rows))
		case "tab5":
			rows, err := experiments.Table5()
			if err != nil {
				return err
			}
			fmt.Print(experiments.RenderTable5(rows))
			opt, err := experiments.Table5Optimized()
			if err != nil {
				return err
			}
			fmt.Println()
			fmt.Print(experiments.RenderTable5(opt))
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = []string{"fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "tab4", "tab5", "disk", "quant", "sparsity", "latency", "serve"}
	}
	for _, id := range ids {
		fmt.Printf("==== %s ====\n", id)
		if err := run(id); err != nil {
			fatal(err)
		}
		fmt.Println()
	}
}

// prefixMode maps the -sharedprefix flag to the facade knob.
func prefixMode(on bool) moelightning.SharedPrefixMode {
	if on {
		return moelightning.SharedPrefixOn
	}
	return moelightning.SharedPrefixOff
}

// runServe demonstrates the streaming serving API on the tiny
// functional engine: continuous admission, per-token streams,
// mid-generation cancellation, and TTFT/TPOT serving metrics.
// -kvdtype int8 serves the same waves over the group-quantized paged
// cache (~9/32 the KV footprint). The demo requests share a 16-token
// system prompt, so with -sharedprefix (the default) every request
// past the wave's first maps that prefix instead of prefilling it.
func runServe(kvDtype moelightning.KVDtype, prefix moelightning.SharedPrefixMode, jsonPath string) error {
	const genLen = 8
	const sysPrompt = 16 // shared system-prompt tokens (one KV block)
	srv, err := moelightning.NewServer(moelightning.ServerConfig{
		Model:          moelightning.TinyMoE(),
		Seed:           2024,
		GenLen:         genLen,
		KVDtype:        kvDtype,
		SharedPrefixKV: prefix,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	reqs := make([]moelightning.Request, 6)
	for i := range reqs {
		reqs[i] = moelightning.Request{
			ID: i + 1, PromptLen: sysPrompt + 4 + 3*i, GenLen: genLen,
			PrefixID: 7, PrefixLen: sysPrompt,
		}
	}
	handles, err := srv.SubmitBatch(context.Background(), reqs)
	if err != nil {
		return err
	}

	// One extra request is canceled after its first token: its sequence
	// retires at the next decode-step boundary and its KV slot frees.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	victim, err := srv.Submit(ctx, moelightning.Request{ID: 99, PromptLen: 10, GenLen: genLen})
	if err != nil {
		return err
	}
	if _, ok := <-victim.Tokens(); ok {
		cancel()
	}

	table := &metrics.Table{Header: []string{"request", "prompt", "status", "tokens"}}
	for _, h := range append(handles, victim) {
		tokens, herr := h.Wait()
		status := "completed"
		if herr != nil {
			status = "canceled"
		}
		table.Add(h.ID(), h.Request().PromptLen, status, fmt.Sprintf("%v", tokens))
	}
	fmt.Print(table.String())
	st := srv.Stats()
	fmt.Printf("kv %v: waves %d, deferred %d, canceled %d; prefill %d tokens at %.0f tok/s; %d tokens at %.0f tok/s; TTFT %v, TPOT %v\n",
		kvDtype, st.Waves, st.Deferred, st.Canceled, st.PrefillTokens, st.PrefillTokensPerSecond,
		st.GeneratedTokens, st.TokensPerSecond, st.AvgTTFT, st.AvgTPOT)
	fmt.Printf("shared prefix: %d tokens mapped (hit ratio %.0f%%), %d copy-on-write copies\n",
		st.PrefixHitTokens, 100*st.PrefixHitRatio, st.CowCopies)
	warmHit := 0.0
	if acq := st.ExpertHits + st.ExpertMisses; acq > 0 {
		warmHit = 100 * float64(st.ExpertHits) / float64(acq)
	}
	fmt.Printf("movement: HtoD %.1f MiB, DtoH %.1f MiB, %d shared pages; expert weights %.1f MiB fetched, warm-hit %.0f%% (%d hits / %d misses)\n",
		float64(st.HtoDBytes)/(1<<20), float64(st.DtoHBytes)/(1<<20), st.PagesMoved,
		float64(st.WeightBytesFetched)/(1<<20), warmHit, st.ExpertHits, st.ExpertMisses)
	if jsonPath != "" {
		out := serveJSON{
			Schema:          "moelightning/serve-demo/v1",
			KVDtype:         kvDtype.String(),
			Waves:           st.Waves,
			Deferred:        st.Deferred,
			Completed:       st.Completed,
			Canceled:        st.Canceled,
			GeneratedTokens: st.GeneratedTokens,
			TokensPerSec:    st.TokensPerSecond,
			PrefillTokens:   st.PrefillTokens,
			PrefillPerSec:   st.PrefillTokensPerSecond,
			TTFT:            traffic.DurationsMS(st.AvgTTFT, st.TTFTP50, st.TTFTP95, st.TTFTP99),
			TPOT:            traffic.DurationsMS(st.AvgTPOT, st.TPOTP50, st.TPOTP95, st.TPOTP99),
			PrefixHitTokens: st.PrefixHitTokens,
			PrefixHitRatio:  st.PrefixHitRatio,
			CowCopies:       st.CowCopies,
		}
		if err := traffic.WriteJSON(jsonPath, out); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
	return nil
}

// serveJSON is -exp serve's machine-readable result (-json), sharing
// the slo experiment's latency summary and writer.
type serveJSON struct {
	Schema          string            `json:"schema"`
	KVDtype         string            `json:"kv_dtype"`
	Waves           int               `json:"waves"`
	Deferred        int               `json:"deferred"`
	Completed       int               `json:"completed"`
	Canceled        int               `json:"canceled"`
	GeneratedTokens int               `json:"generated_tokens"`
	TokensPerSec    float64           `json:"tokens_per_sec"`
	PrefillTokens   int               `json:"prefill_tokens"`
	PrefillPerSec   float64           `json:"prefill_tokens_per_sec"`
	TTFT            traffic.LatencyMS `json:"ttft_ms"`
	TPOT            traffic.LatencyMS `json:"tpot_ms"`
	PrefixHitTokens int               `json:"prefix_hit_tokens"`
	PrefixHitRatio  float64           `json:"prefix_hit_ratio"`
	CowCopies       int64             `json:"cow_copies"`
}

// runSLO is the standing serve benchmark: seeded open-loop scenarios
// (steady Poisson chat+agentic, bursty four-cohort mix) played in real
// time against a live SLO-aware tiny server at several arrival-rate
// multiples. Each sweep point reports goodput under the per-cohort SLOs
// and TTFT/TPOT percentiles; the knee marks where extra offered load
// stops buying goodput. The whole result lands in BENCH_serve.json.
func runSLO(kvDtype moelightning.KVDtype, prefix moelightning.SharedPrefixMode, rps float64, requests int, scales []float64, seed int64, jsonPath string) error {
	if len(scales) < 3 {
		return fmt.Errorf("slo: need >= 3 sweep scales, got %v", scales)
	}
	const genLen = 10
	factory := func(scale float64) (traffic.ServerHooks, error) {
		srv, err := moelightning.NewServer(moelightning.ServerConfig{
			Model:          moelightning.TinyMoE(),
			Seed:           seed,
			GenLen:         genLen,
			MaxContext:     64,
			KVDtype:        kvDtype,
			SLOAware:       true,
			SharedPrefixKV: prefix,
		})
		if err != nil {
			return traffic.ServerHooks{}, err
		}
		return traffic.ServerHooks{
			Submit: func(req workload.Request, slo traffic.SLO) (*moelightning.Handle, error) {
				return srv.SubmitSLO(context.Background(), req, slo)
			},
			Stats: srv.Stats,
			Close: srv.Close,
		}, nil
	}

	scenarios := []traffic.Scenario{
		traffic.PoissonChat(rps, requests),
		traffic.BurstyMix(rps, requests),
	}
	bench := traffic.BenchResult{
		Schema:        traffic.BenchSchema,
		GeneratedUnix: time.Now().Unix(),
		Model:         moelightning.TinyMoE().Name,
		KVDtype:       kvDtype.String(),
		Admission:     string(traffic.PolicySlack),
		Seed:          seed,
	}
	for _, scn := range scenarios {
		points, err := traffic.Sweep(factory, scn, seed, scales, traffic.RunConfig{})
		if err != nil {
			return err
		}
		knee := traffic.FindKnee(points)
		table := &metrics.Table{Header: []string{
			"scale", "offered rps", "goodput rps", "slo met", "ttft p50/p95/p99 ms", "tpot p95 ms", "deferred", "knee"}}
		for i, p := range points {
			mark := ""
			if i == knee {
				mark = "<-- knee"
			}
			table.Add(
				fmt.Sprintf("%.2g", p.Scale),
				fmt.Sprintf("%.1f", p.OfferedRPS),
				fmt.Sprintf("%.1f", p.GoodputRPS),
				fmt.Sprintf("%d/%d", p.SLOMet, p.SLORequests),
				fmt.Sprintf("%.1f/%.1f/%.1f", p.TTFT.P50, p.TTFT.P95, p.TTFT.P99),
				fmt.Sprintf("%.1f", p.TPOT.P95),
				p.Deferred, mark)
		}
		fmt.Printf("-- %s (%s) --\n%s", scn.Name, scn.Arrival.Name(), table.String())
		bench.Scenarios = append(bench.Scenarios, traffic.BenchScenario{
			Name:             scn.Name,
			Arrival:          scn.Arrival.Name(),
			RequestsPerPoint: requests,
			Points:           points,
			Knee:             knee,
		})
	}
	if err := traffic.WriteBench(jsonPath, bench); err != nil {
		return err
	}
	// Read back through the validator so a malformed write fails loudly.
	if _, err := traffic.ReadBench(jsonPath); err != nil {
		return fmt.Errorf("slo: %s failed validation after write: %w", jsonPath, err)
	}
	fmt.Printf("wrote %s (%d scenarios, %d-point sweep)\n", jsonPath, len(bench.Scenarios), len(scales))
	return nil
}

// runCalib harvests the calibration table from live micro-benches,
// predicts the standing serve scenarios through it and through the
// analytic host model, measures the real server on the same scenarios,
// and writes the whole loop to BENCH_calib.json (read back through the
// validator so a malformed write fails loudly).
func runCalib(quick bool, seed int64, jsonPath string) error {
	report, err := experiments.Calibration(quick, seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderCalibration(report))
	if err := calib.WriteBench(jsonPath, report); err != nil {
		return err
	}
	if _, err := calib.LoadBench(jsonPath); err != nil {
		return fmt.Errorf("calib: %s failed validation after write: %w", jsonPath, err)
	}
	fmt.Printf("wrote %s (%d scenarios, %d table entries)\n",
		jsonPath, len(report.Scenarios), len(report.Table.Entries))
	return nil
}

// runChaos plays the standing fault-injection scenario (a seeded
// bursty trace with transient expert-fetch faults, forced KV-pool
// exhaustions and overload control) against a live server and verifies
// the robustness invariants: every handle terminates, survivors are
// bit-identical to the sequential reference, no KV blocks leak, and
// Close returns within its bound. -quick shrinks the trace for CI
// smoke runs.
func runChaos(quick bool, seed int64, jsonPath string) error {
	cfg := chaos.Config{Seed: seed}
	if quick {
		cfg.Requests = 48
		cfg.Speed = 32
	}
	rep, err := chaos.Run(cfg)
	table := &metrics.Table{Header: []string{"metric", "value"}}
	table.Add("scenario", fmt.Sprintf("%s (seed %d, %d requests)", rep.Scenario, rep.Seed, rep.Requests))
	table.Add("submitted / shed", fmt.Sprintf("%d / %d", rep.Submitted, rep.Shed))
	table.Add("completed / canceled / failed", fmt.Sprintf("%d / %d / %d", rep.Completed, rep.Canceled, rep.Failed))
	table.Add("deadline dropped", rep.DeadlineDropped)
	table.Add("fault retries / failures", fmt.Sprintf("%d / %d", rep.FaultRetries, rep.FaultFailures))
	table.Add("wave timeouts", rep.WaveTimeouts)
	table.Add("leaked-block waves", rep.LeakedBlockWaves)
	table.Add("survivors checked / mismatched", fmt.Sprintf("%d / %d", rep.SurvivorsChecked, rep.Mismatched))
	table.Add("close", fmt.Sprintf("%dms (within bound: %v)", rep.CloseMillis, rep.CloseWithinBound))
	fmt.Print(table.String())
	if werr := traffic.WriteJSON(jsonPath, rep); werr != nil {
		return werr
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return err
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("parsing %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moebench:", err)
	os.Exit(1)
}
