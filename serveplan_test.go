package moelightning

import (
	"context"
	"runtime"
	"strings"
	"testing"

	"moelightning/internal/hardware"
	"moelightning/internal/perfmodel"
	"moelightning/internal/policy"
	"moelightning/internal/workload"
)

// tinyServeWorkload is a wave-sized closed queue on the tiny model.
func tinyServeWorkload() WorkloadConfig {
	return workload.Config{
		Name:        "tiny-serve",
		AvgPrompt:   12,
		MaxPrompt:   12,
		GenLen:      8,
		NumRequests: 8,
	}
}

// TestOptimizedConfigConstructsServer closes the search-to-serve loop:
// the optimizer picks a policy for the tiny model on this host, the
// policy maps onto a ServerConfig, and that config must construct a
// real Server and drain a batch.
func TestOptimizedConfigConstructsServer(t *testing.T) {
	w := tinyServeWorkload()
	in := perfmodel.Input{
		Model:    TinyMoE(),
		Spec:     hardware.Host(runtime.NumCPU()),
		Workload: w,
		KVCodec:  perfmodel.KVPagedF32,
		Paged:    true,
	}
	// Constrain the search to shapes the functional engine executes:
	// CPU attention over the paged cache, streamed/paged weights, waves
	// the tiny arenas can hold.
	res, err := policy.Optimize(in,
		policy.WithGPUAttn(false),
		policy.WithMuGrid(1, 2, 4, 8),
		policy.WithMaxN(8),
		policy.WithRwGrid(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := ServerConfigForPolicy(TinyMoE(), res.Policy, w, KVFloat32)
	if cfg.MicroBatchSize != res.Policy.Mu || cfg.NumMicroBatches != res.Policy.MicroBatches() {
		t.Fatalf("config %+v does not reflect policy %v", cfg, res.Policy)
	}

	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("emitted config does not construct a server: %v", err)
	}
	defer srv.Close()
	reqs := make([]Request, w.NumRequests)
	for i := range reqs {
		reqs[i] = Request{ID: i + 1, PromptLen: w.AvgPrompt, GenLen: w.GenLen}
	}
	handles, err := srv.SubmitBatch(context.Background(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range handles {
		tokens, herr := h.Wait()
		if herr != nil {
			t.Fatalf("request %d failed under emitted config: %v", h.ID(), herr)
		}
		if len(tokens) != w.GenLen {
			t.Fatalf("request %d generated %d tokens, want %d", h.ID(), len(tokens), w.GenLen)
		}
	}
}

func TestFormatServerConfigIsCopyPasteable(t *testing.T) {
	cfg := ServerConfigForPolicy(TinyMoE(), Policy{N: 8, Mu: 4, GPUFFN: true}, tinyServeWorkload(), KVInt8)
	s := FormatServerConfig(cfg)
	for _, want := range []string{
		"MicroBatchSize: 4", "NumMicroBatches: 2", "GenLen: 8",
		"moelightning.KVInt8", "FixedGenLen: true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("formatted config missing %q:\n%s", want, s)
		}
	}
}
