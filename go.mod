module moelightning

go 1.24
